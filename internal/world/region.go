package world

import "fmt"

// DefaultBandChunks is the default tile side (band width) in chunk
// columns (128 blocks): wide enough that bounded-area players rarely
// leave their tile, narrow enough that a handful of tiles cover the
// spawn neighbourhood of a small cluster.
const DefaultBandChunks = 8

// Region is the set of chunk columns one shard owns under a topology.
// The zero value contains every chunk, which is what an unsharded
// server uses.
type Region struct {
	// Topo is the tiling; nil means the trivial one-tile topology.
	Topo Topology
	// Shards is the shard count the static assignment splits tiles over;
	// values < 2 make the region own everything (single shard).
	Shards int
	// Index is the owning shard this region describes.
	Index int
	// Table, when non-nil, makes ownership dynamic: Contains consults the
	// live tile → shard assignment instead of the static default, so a
	// migration or failover re-gates chunk persistence on every shard the
	// moment the table's epoch advances, without rebuilding servers.
	Table *OwnershipTable
}

// Contains reports whether the region owns the chunk column.
func (r Region) Contains(cp ChunkPos) bool {
	if r.Table != nil {
		return r.Table.ShardOf(cp) == r.Index
	}
	if r.Shards < 2 || r.Topo == nil {
		return r.Index == 0
	}
	return DefaultOwner(r.Topo, r.Shards, r.Topo.TileOf(cp)) == r.Index
}

// ContainsBlock reports whether the region owns the block position.
func (r Region) ContainsBlock(b BlockPos) bool { return r.Contains(b.Chunk()) }

// All reports whether the region covers the whole grid (single shard).
func (r Region) All() bool {
	if r.Table != nil {
		return r.Table.Shards() == 1
	}
	return r.Shards < 2 || r.Topo == nil
}

// String implements fmt.Stringer.
func (r Region) String() string {
	if r.All() {
		return "region(all)"
	}
	shards := r.Shards
	topo := r.Topo
	if r.Table != nil {
		shards = r.Table.Shards()
		topo = r.Table.Topology()
	}
	return fmt.Sprintf("region(%d/%d, %v)", r.Index, shards, topo)
}

// StaticRegion returns shard i's region under the topology's default
// assignment (no ownership table: boot-time sharding, frozen).
func StaticRegion(topo Topology, shards, i int) Region {
	return Region{Topo: topo, Shards: shards, Index: i}
}
