// Package rtserve serves a real-time MVE instance to network clients over
// the internal/netproto protocol. cmd/servo-server is a thin wrapper around
// this package; tests drive it over loopback TCP.
//
// Each client session owns a player whose actions are fed from the network
// (a queue drained by the game loop each tick) and receives 10 Hz state
// updates plus view-local chunk data. Servo's backend is invisible at this
// layer — the protocol is identical for baseline and serverless servers
// (paper requirement R4).
package rtserve

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"servo/internal/mve"
	"servo/internal/netproto"
	"servo/internal/world"
)

// Instance is the subset of the public servo.Instance surface rtserve
// needs; it is satisfied by *servo.Instance.
type Instance interface {
	Server() *mve.Server
	ConnectBehavior(name string, b mve.Behavior) *mve.Player
	// Disconnect reports whether a session was actually removed; rtserve
	// tears the connection down either way.
	Disconnect(p *mve.Player) bool
	Locked(fn func())
}

// Config tunes the network server.
type Config struct {
	// PushInterval is the state-update period (default 100 ms).
	PushInterval time.Duration
	// ChunksPerPush caps chunk payloads per update cycle (default 4).
	ChunksPerPush int
	// Logf receives connection events; nil silences logging.
	Logf func(format string, args ...any)
}

// Server accepts protocol connections for one instance.
type Server struct {
	inst Instance
	cfg  Config

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a network server for inst.
func NewServer(inst Instance, cfg Config) *Server {
	if cfg.PushInterval <= 0 {
		cfg.PushInterval = 100 * time.Millisecond
	}
	if cfg.ChunksPerPush <= 0 {
		cfg.ChunksPerPush = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{inst: inst, cfg: cfg, sessions: make(map[*session]struct{})}
}

// Serve accepts connections on ln until the listener closes or Close is
// called. It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close terminates all sessions and waits for their goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// SessionCount returns the number of connected clients.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// session is one connected client.
type session struct {
	server  *Server
	conn    net.Conn
	player  *mve.Player
	actions chan mve.Action
	sent    map[world.ChunkPos]bool

	// avatarBuf is the session's reusable avatar batch: each push,
	// snapshot coalesces every local player and ghost into this one
	// buffer and flushes it as a single state update — one message per
	// tick instead of per-entity sends, and no steady-state allocation
	// (the buffer is re-sliced to zero length and refilled). It is owned
	// by the push loop: the previous update has been written before the
	// next snapshot overwrites it.
	avatarBuf []netproto.AvatarState

	// chunkBuf is the session's reusable chunk-encode scratch: each push,
	// snapshot appends every outgoing chunk's encoding into this one
	// buffer (chunkOffs marks the boundaries) and the messages reference
	// sub-slices of it — no per-chunk encode allocation once the buffer
	// has warmed. Owned by the push loop, like avatarBuf: the previous
	// push's messages are written before the next snapshot overwrites it.
	chunkBuf  []byte
	chunkOffs []int

	writeMu sync.Mutex // serialises the push loop and pong replies
}

// Actions implements mve.Behavior: the game loop drains the queued network
// actions each tick.
func (c *session) Actions(_ *rand.Rand, _ *mve.Player, _ *mve.Server) []mve.Action {
	var out []mve.Action
	for {
		select {
		case a := <-c.actions:
			out = append(out, a)
		default:
			return out
		}
	}
}

var _ mve.Behavior = (*session)(nil)

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := netproto.NewReader(conn)
	first, err := r.Next()
	if err != nil || first.Type != netproto.MsgJoin {
		return
	}
	sess := &session{
		server:  s,
		conn:    conn,
		actions: make(chan mve.Action, 256),
		sent:    make(map[world.ChunkPos]bool),
	}
	sess.player = s.inst.ConnectBehavior(first.Name, sess)
	s.mu.Lock()
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.cfg.Logf("rtserve: %s joined (player %d)", first.Name, sess.player.ID)
	defer func() {
		s.inst.Disconnect(sess.player)
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.cfg.Logf("rtserve: %s left", first.Name)
	}()

	if err := sess.write(netproto.Message{
		Type: netproto.MsgWelcome, PlayerID: int64(sess.player.ID),
	}); err != nil {
		return
	}

	done := make(chan struct{})
	defer close(done)
	go sess.pushLoop(done)

	for {
		m, err := r.Next()
		if err != nil {
			return
		}
		if !sess.handle(m) {
			return
		}
	}
}

// write sends one message, serialised against the push loop.
func (c *session) write(m netproto.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return netproto.Write(c.conn, m)
}

// handle enqueues one client message as a game action; it reports false to
// end the session.
func (c *session) handle(m netproto.Message) bool {
	var a mve.Action
	switch m.Type {
	case netproto.MsgMove:
		a = mve.MoveTo(m.DestX, m.DestZ, m.Speed)
	case netproto.MsgPlaceBlock:
		a = mve.Action{Kind: mve.ActionPlaceBlock, Pos: m.Pos, Block: m.Block}
	case netproto.MsgBreakBlock:
		a = mve.Action{Kind: mve.ActionBreakBlock, Pos: m.Pos}
	case netproto.MsgChat:
		a = mve.Action{Kind: mve.ActionChat}
	case netproto.MsgSetInventory:
		a = mve.Action{Kind: mve.ActionSetInventory, Item: m.Item}
	case netproto.MsgPing:
		return c.write(netproto.Message{Type: netproto.MsgPong, Nonce: m.Nonce}) == nil
	default:
		return true // ignore unknown client messages
	}
	select {
	case c.actions <- a:
	default: // drop on overload; movement is idempotent, ops get resent
	}
	return true
}

// pushLoop streams state updates and nearby chunks at the push interval.
func (c *session) pushLoop(done <-chan struct{}) {
	t := time.NewTicker(c.server.cfg.PushInterval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
		}
		update, chunks := c.snapshot()
		if c.write(update) != nil {
			return
		}
		for _, m := range chunks {
			if c.write(m) != nil {
				return
			}
		}
	}
}

// snapshot builds the state update and pending chunk payloads under the
// game-loop lock.
func (c *session) snapshot() (update netproto.Message, chunks []netproto.Message) {
	srv := c.server.inst.Server()
	c.server.inst.Locked(func() {
		update = netproto.Message{Type: netproto.MsgStateUpdate, Tick: srv.Tick()}
		c.avatarBuf = appendAvatars(c.avatarBuf[:0], srv)
		update.Avatars = c.avatarBuf
		pos := c.player.Pos()
		// Encode every outgoing chunk into the shared scratch buffer and
		// record the boundaries; the messages are built afterwards because
		// appends may move the buffer while it grows.
		c.chunkBuf = c.chunkBuf[:0]
		c.chunkOffs = append(c.chunkOffs[:0], 0)
		for _, cp := range world.ChunksWithin(pos, srv.Config().ViewDistance) {
			if len(c.chunkOffs)-1 >= c.server.cfg.ChunksPerPush {
				break
			}
			if c.sent[cp] {
				continue
			}
			ch := srv.World().Chunk(cp)
			if ch == nil {
				continue
			}
			c.sent[cp] = true
			c.chunkBuf = ch.EncodeAppend(c.chunkBuf)
			c.chunkOffs = append(c.chunkOffs, len(c.chunkBuf))
		}
		for i := 1; i < len(c.chunkOffs); i++ {
			chunks = append(chunks, netproto.Message{
				Type: netproto.MsgChunkData, ChunkData: c.chunkBuf[c.chunkOffs[i-1]:c.chunkOffs[i]],
			})
		}
	})
	return update, chunks
}

// appendAvatars coalesces the server's avatar state into buf: every
// local player, then every ghost avatar — sessions hosted by
// neighbouring shards, replicated here by the cluster's visibility bus —
// merged into the same batch under negated ids, so a client near a
// region border renders one continuous world. Local player ids are
// positive; a negative id marks the avatar read-only. The fast path is
// allocation-free once buf has warmed to the avatar population (see
// BenchmarkAppendAvatars). Must run under the game-loop lock.
func appendAvatars(buf []netproto.AvatarState, srv *mve.Server) []netproto.AvatarState {
	srv.EachPlayer(func(p *mve.Player) {
		buf = append(buf, netproto.AvatarState{ID: int64(p.ID), X: p.X, Z: p.Z})
	})
	srv.EachGhost(func(g *mve.GhostAvatar) {
		buf = append(buf, netproto.AvatarState{ID: -g.ID, X: g.X, Z: g.Z})
	})
	return buf
}

// --- Client ------------------------------------------------------------------

// Client is a minimal protocol client for bots and tests.
type Client struct {
	conn net.Conn
	r    *netproto.Reader

	// Counters updated by the read loop.
	mu       sync.Mutex
	updates  int
	chunks   int
	players  map[int64][2]float64
	playerID int64
}

// Dial connects and joins with the given name, blocking until the welcome
// arrives.
func Dial(addr, name string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("rtserve: dial: %w", err)
	}
	c := &Client{conn: conn, r: netproto.NewReader(conn), players: make(map[int64][2]float64)}
	if err := netproto.Write(conn, netproto.Message{Type: netproto.MsgJoin, Name: name}); err != nil {
		conn.Close()
		return nil, err
	}
	m, err := c.r.Next()
	if err != nil || m.Type != netproto.MsgWelcome {
		conn.Close()
		return nil, fmt.Errorf("rtserve: no welcome (got %v, %v)", m.Type, err)
	}
	c.playerID = m.PlayerID
	go c.readLoop()
	return c, nil
}

// PlayerID returns the server-assigned player id.
func (c *Client) PlayerID() int64 { return c.playerID }

func (c *Client) readLoop() {
	for {
		m, err := c.r.Next()
		if err != nil {
			return
		}
		c.mu.Lock()
		switch m.Type {
		case netproto.MsgStateUpdate:
			c.updates++
			for _, a := range m.Avatars {
				c.players[a.ID] = [2]float64{a.X, a.Z}
			}
		case netproto.MsgChunkData:
			c.chunks++
		}
		c.mu.Unlock()
	}
}

// Move sends a movement command.
func (c *Client) Move(x, z, speed float64) error {
	return netproto.Write(c.conn, netproto.Message{Type: netproto.MsgMove, DestX: x, DestZ: z, Speed: speed})
}

// PlaceBlock sends a block placement.
func (c *Client) PlaceBlock(pos world.BlockPos, b world.Block) error {
	return netproto.Write(c.conn, netproto.Message{Type: netproto.MsgPlaceBlock, Pos: pos, Block: b})
}

// Stats returns the counts of received updates and chunks.
func (c *Client) Stats() (updates, chunks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates, c.chunks
}

// Position returns the last known position of a player id.
func (c *Client) Position(id int64) (x, z float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.players[id]
	return p[0], p[1], ok
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// LogfVia adapts the standard logger for Config.Logf.
func LogfVia(l *log.Logger) func(string, ...any) {
	return func(format string, args ...any) { l.Printf(format, args...) }
}
