package rtserve

import (
	"fmt"
	"net"
	"testing"
	"time"

	"servo"
	"servo/internal/mve"
	"servo/internal/sim"
	"servo/internal/world"
)

// startServer boots a real-time flat-world instance on a loopback listener.
func startServer(t *testing.T, cfg servo.Config) (*servo.Instance, *Server, string) {
	t.Helper()
	cfg.RealTime = true
	if cfg.WorldType == "" {
		cfg.WorldType = "flat"
	}
	inst := servo.NewInstance(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(inst, Config{PushInterval: 20 * time.Millisecond})
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		ln.Close()
		inst.Stop()
	})
	return inst, srv, ln.Addr().String()
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEndToEndJoinAndUpdates(t *testing.T) {
	inst, srv, addr := startServer(t, servo.Config{Seed: 1})
	c, err := Dial(addr, "e2e-bot")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.PlayerID() == 0 {
		t.Fatal("no player id assigned")
	}
	waitFor(t, "a session", func() bool { return srv.SessionCount() == 1 })
	var players int
	inst.Locked(func() { players = inst.Server().PlayerCount() })
	if players != 1 {
		t.Fatalf("server has %d players, want 1", players)
	}
	waitFor(t, "state updates and chunks", func() bool {
		u, ch := c.Stats()
		return u >= 3 && ch >= 1
	})
}

func TestEndToEndMovement(t *testing.T) {
	_, _, addr := startServer(t, servo.Config{Seed: 2})
	c, err := Dial(addr, "mover")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Move(30, 0, 100); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "avatar movement visible in updates", func() bool {
		x, _, ok := c.Position(c.PlayerID())
		return ok && x > 10
	})
}

func TestEndToEndBlockPlacement(t *testing.T) {
	inst, _, addr := startServer(t, servo.Config{Seed: 3})
	c, err := Dial(addr, "builder")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	target := world.BlockPos{X: 3, Y: 20, Z: 3}
	if err := c.PlaceBlock(target, world.Block{ID: world.Stone}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "block to appear in the world", func() bool {
		var got world.Block
		inst.Locked(func() { got = inst.Server().World().BlockAt(target) })
		return got.ID == world.Stone
	})
}

func TestEndToEndMultipleClientsSeeEachOther(t *testing.T) {
	_, srv, addr := startServer(t, servo.Config{Seed: 4})
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	waitFor(t, "two sessions", func() bool { return srv.SessionCount() == 2 })
	waitFor(t, "client a to see client b", func() bool {
		_, _, ok := a.Position(b.PlayerID())
		return ok
	})
}

func TestDisconnectCleansUp(t *testing.T) {
	inst, srv, addr := startServer(t, servo.Config{Seed: 5})
	c, err := Dial(addr, "quitter")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "session", func() bool { return srv.SessionCount() == 1 })
	c.Close()
	waitFor(t, "session cleanup", func() bool { return srv.SessionCount() == 0 })
	waitFor(t, "player removal", func() bool {
		var n int
		inst.Locked(func() { n = inst.Server().PlayerCount() })
		return n == 0
	})
}

func TestServedChunksDecode(t *testing.T) {
	// Chunks streamed to clients must decode back into valid world data:
	// run a client until a chunk arrives, reading via a raw client.
	_, _, addr := startServer(t, servo.Config{Seed: 6})
	c, err := Dial(addr, "chunky")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "chunk delivery", func() bool {
		_, ch := c.Stats()
		return ch >= 4
	})
}

// TestGhostAvatarsInStateUpdates: ghost avatars — replicated from a
// neighbouring shard by the cluster's visibility bus — merge into the
// protocol state updates under negated ids, so a client near a region
// border sees one continuous world.
func TestGhostAvatarsInStateUpdates(t *testing.T) {
	inst, _, addr := startServer(t, servo.Config{Seed: 9})
	c, err := Dial(addr, "viewer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	inst.Locked(func() {
		inst.Server().UpsertGhost("neighbour", 20, 30, 1, 1)
	})
	waitFor(t, "the ghost avatar", func() bool {
		_, _, ok := c.Position(-1)
		return ok
	})
	x, z, _ := c.Position(-1)
	if x != 20 || z != 30 {
		t.Fatalf("ghost at (%g, %g), want (20, 30)", x, z)
	}
	// The viewer's own avatar still arrives under its positive id.
	if _, _, ok := c.Position(c.PlayerID()); !ok {
		t.Fatal("local avatar missing from updates")
	}
	// Promotion removes the ghost from subsequent updates.
	inst.Locked(func() { inst.Server().RemoveGhost("neighbour") })
	waitFor(t, "ghost removal", func() bool {
		var n int
		inst.Locked(func() { n = inst.Server().GhostCount() })
		return n == 0
	})
}

// benchServer builds a bare game server populated with local players and
// cross-shard ghosts, the avatar mix the push loop batches every tick.
func benchServer(players, ghosts int) *mve.Server {
	srv := mve.NewServer(sim.NewLoop(1), mve.Config{WorldType: "flat"})
	for i := 0; i < players; i++ {
		srv.ConnectAt(fmt.Sprintf("p%d", i), nil, float64(i), float64(i))
	}
	for i := 0; i < ghosts; i++ {
		srv.UpsertGhost(fmt.Sprintf("g%d", i), float64(i), -float64(i), 1, 1)
	}
	return srv
}

// TestAppendAvatarsBatchesPlayersAndGhosts: one snapshot coalesces every
// local player (positive id) and every ghost (negated id) into a single
// buffer, and a warmed buffer is refilled without allocating.
func TestAppendAvatarsBatchesPlayersAndGhosts(t *testing.T) {
	srv := benchServer(8, 3)
	buf := appendAvatars(nil, srv)
	if len(buf) != 11 {
		t.Fatalf("batched %d avatars, want 11", len(buf))
	}
	pos, neg := 0, 0
	for _, a := range buf {
		if a.ID >= 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos != 8 || neg != 3 {
		t.Fatalf("batch has %d players / %d ghosts, want 8 / 3", pos, neg)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = appendAvatars(buf[:0], srv)
	}); allocs != 0 {
		t.Fatalf("warmed batch refill allocates %.1f times per push, want 0", allocs)
	}
}

// BenchmarkAppendAvatars measures the per-push avatar batching fast path
// (100 players + 20 ghosts): the buffer is reused, so steady state is
// allocation-free.
func BenchmarkAppendAvatars(b *testing.B) {
	srv := benchServer(100, 20)
	buf := appendAvatars(nil, srv)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendAvatars(buf[:0], srv)
	}
	_ = buf
}
