// Package tcache implements Servo's terrain cache (paper §III-E): a local
// cache in front of serverless storage, with distance-based pre-fetching,
// that hides the latency and performance variability of managed storage
// from the game loop.
//
// Layering (top to bottom):
//
//	game server (decoded chunks in the world)
//	  └─ tcache: local file-system cache of encoded chunks  ← this package
//	       └─ blob.Store: serverless storage (remote, variable latency)
//
// Reads that hit the local cache cost a local-disk read; misses pay the
// remote latency. The pre-fetcher pulls chunks "outside of, but close to,
// the player's view distance" into the local cache before they are needed,
// so that by the time the game requests them they are local. Writes land
// in the local cache immediately and are flushed to remote storage
// periodically (paper: "writes to remote storage are performed
// periodically").
package tcache

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"servo/internal/blob"
	"servo/internal/metrics"
	"servo/internal/sim"
	"servo/internal/world"
)

// Config tunes the cache.
type Config struct {
	// LocalRead is the latency distribution of a local cache hit
	// (local-disk read of an encoded chunk).
	LocalRead sim.Dist
	// FlushInterval is the period of write-back to remote storage.
	FlushInterval time.Duration
	// PrefetchBudget caps how many remote fetches one Prefetch call may
	// start (0 = unlimited). A bounded budget keeps pre-fetching from
	// saturating storage bandwidth, at the cost of occasional demand
	// misses when players out-run the prefetcher — the residual tail the
	// paper observes on the cached configuration (§IV-F: cached p99 is
	// comparable to uncached, p99.9 is 34 ms).
	PrefetchBudget int
}

// DefaultConfig matches the §IV-F experiment setup: ~1 ms local reads and a
// 30-second write-back period.
func DefaultConfig() Config {
	return Config{
		LocalRead:      sim.LogNormal{Scale: time.Millisecond, Mu: 0.0, Sigma: 0.45},
		FlushInterval:  30 * time.Second,
		PrefetchBudget: 64,
	}
}

// Cache is a write-back terrain cache bound to a clock and a remote store.
type Cache struct {
	clock  sim.Clock
	remote *blob.Store
	cfg    Config

	local   map[world.ChunkPos][]byte // encoded chunks cached locally
	absent  map[world.ChunkPos]bool   // negative cache: known-missing keys
	dirty   map[world.ChunkPos]bool   // locally written, not yet flushed
	pending map[world.ChunkPos][]func(data []byte, err error)

	// RetrievalLatency records the end-to-end chunk retrieval latency as
	// observed by the game server — the metric of Fig. 13.
	RetrievalLatency metrics.Sample
	// Hits and Misses count local-cache outcomes for demand reads
	// (prefetches are not counted).
	Hits, Misses metrics.Counter
	// PrefetchIssued counts prefetch fetches sent to remote storage.
	PrefetchIssued metrics.Counter

	flushing bool
	flushGen int // invalidates old flusher closures across stop/start
}

// New returns a cache in front of remote. Start the periodic write-back
// with StartFlusher (experiments without write traffic may skip it).
func New(clock sim.Clock, remote *blob.Store, cfg Config) *Cache {
	return &Cache{
		clock:   clock,
		remote:  remote,
		cfg:     cfg,
		local:   make(map[world.ChunkPos][]byte),
		absent:  make(map[world.ChunkPos]bool),
		dirty:   make(map[world.ChunkPos]bool),
		pending: make(map[world.ChunkPos][]func([]byte, error)),
	}
}

// Remote returns the backing object store.
func (c *Cache) Remote() *blob.Store { return c.remote }

// Key returns the remote-storage object key for a chunk position.
func Key(pos world.ChunkPos) string {
	return "terrain/" + pos.String()
}

// Get retrieves the encoded chunk at pos, from the local cache if present,
// otherwise from remote storage (populating the local cache). The observed
// latency is recorded in RetrievalLatency. Concurrent Gets and prefetches
// of the same chunk coalesce into a single remote read.
func (c *Cache) Get(pos world.ChunkPos, cb func(data []byte, err error)) {
	start := c.clock.Now()
	done := func(data []byte, err error) {
		if err == nil {
			// Only successful retrievals enter the Fig. 13 metric;
			// not-found lookups fall through to terrain generation.
			c.RetrievalLatency.Add(c.clock.Now() - start)
		}
		cb(data, err)
	}
	if data, ok := c.local[pos]; ok {
		c.Hits.Inc()
		lat := c.cfg.LocalRead.Sample(c.clock.RNG())
		c.clock.After(lat, func() { done(data, nil) })
		return
	}
	if c.absent[pos] {
		// Known missing: answer from local knowledge. The single writer
		// of a world instance is this server, so absence is stable until
		// our own Put.
		lat := c.cfg.LocalRead.Sample(c.clock.RNG())
		c.clock.After(lat, func() { done(nil, fmt.Errorf("%w: %v", blob.ErrNotFound, pos)) })
		return
	}
	c.Misses.Inc()
	c.fetch(pos, done)
}

// fetch joins or starts a remote read for pos.
func (c *Cache) fetch(pos world.ChunkPos, cb func(data []byte, err error)) {
	if waiters, inflight := c.pending[pos]; inflight {
		c.pending[pos] = append(waiters, cb)
		return
	}
	c.pending[pos] = []func([]byte, error){cb}
	// GetRetrying: chaos-injected faults retry inside the store, so a
	// fault window never surfaces as a spurious not-found (which would
	// trigger destructive regeneration) and never double-counts
	// hits/misses — those were tallied once in Get.
	c.remote.GetRetrying(Key(pos), func(data []byte, err error) {
		if errors.Is(err, blob.ErrNotFound) {
			c.absent[pos] = true
		}
		if err == nil {
			// A local write that raced the fetch wins: it is newer.
			if _, ok := c.local[pos]; !ok {
				c.local[pos] = data
			} else {
				data = c.local[pos]
			}
		}
		waiters := c.pending[pos]
		delete(c.pending, pos)
		for _, w := range waiters {
			w(data, err)
		}
	})
}

// Prefetch starts background fetches for every position not already local
// or in flight. Completion is not reported; the chunks simply appear in the
// local cache.
func (c *Cache) Prefetch(positions []world.ChunkPos) {
	started := 0
	for _, pos := range positions {
		if c.cfg.PrefetchBudget > 0 && started >= c.cfg.PrefetchBudget {
			return
		}
		if _, ok := c.local[pos]; ok {
			continue
		}
		if c.absent[pos] {
			continue
		}
		if _, inflight := c.pending[pos]; inflight {
			continue
		}
		started++
		c.PrefetchIssued.Inc()
		c.fetch(pos, func([]byte, error) {})
	}
}

// Put stores the encoded chunk locally and marks it for the next periodic
// flush to remote storage.
func (c *Cache) Put(pos world.ChunkPos, data []byte) {
	c.local[pos] = data
	delete(c.absent, pos)
	c.dirty[pos] = true
}

// PutThen stores the chunk locally and pushes it to remote storage
// immediately — bypassing the periodic write-back — calling done once
// data for the chunk is durably in remote storage (retrying through
// fault windows; if a newer write for the chunk supersedes this one, done
// transfers to it rather than firing early). Ownership migrations use it
// to gate the ownership flip on the flush, so a brownout delays the
// migration but never loses the chunk.
func (c *Cache) PutThen(pos world.ChunkPos, data []byte, done func()) {
	c.local[pos] = data
	delete(c.absent, pos)
	// This write supersedes any queued write-back of the same chunk.
	delete(c.dirty, pos)
	c.remote.PutDurablyThen(Key(pos), data, done)
}

// Contains reports whether pos is in the local cache.
func (c *Cache) Contains(pos world.ChunkPos) bool {
	_, ok := c.local[pos]
	return ok
}

// LocalLen returns the number of locally cached chunks.
func (c *Cache) LocalLen() int { return len(c.local) }

// DirtyLen returns the number of chunks awaiting write-back.
func (c *Cache) DirtyLen() int { return len(c.dirty) }

// StartFlusher begins the periodic write-back loop.
func (c *Cache) StartFlusher() {
	if c.flushing {
		return
	}
	c.flushing = true
	c.flushGen++
	gen := c.flushGen
	var tick func()
	tick = func() {
		// The generation check retires this closure after StopFlusher
		// even if the flusher was restarted before our pending callback
		// fired — otherwise a stop/start cycle would leave two loops
		// flushing concurrently.
		if !c.flushing || c.flushGen != gen {
			return
		}
		c.Flush()
		c.clock.After(c.cfg.FlushInterval, tick)
	}
	c.clock.After(c.cfg.FlushInterval, tick)
}

// StopFlusher ends the periodic write-back loop after the next scheduled
// tick, releasing the cache for collection. A discarded system (e.g. a
// scenario's prewrite phase) must stop its flushers or their reschedule
// closures pin the whole system in memory for the rest of the run.
func (c *Cache) StopFlusher() { c.flushing = false }

// Flush writes every dirty chunk to remote storage immediately, in
// deterministic position order (map order would pair the store's random
// latency/fault draws with different chunks on every run, breaking
// replay). A failed write (e.g. a chaos-injected storage fault) re-marks
// the chunk dirty so the next flush retries it once the fault window
// passes.
func (c *Cache) Flush() {
	keys := make([]world.ChunkPos, 0, len(c.dirty))
	for pos := range c.dirty {
		keys = append(keys, pos)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].X != keys[j].X {
			return keys[i].X < keys[j].X
		}
		return keys[i].Z < keys[j].Z
	})
	c.dirty = make(map[world.ChunkPos]bool)
	for _, pos := range keys {
		pos := pos
		// PutLatest: if the chunk is re-flushed before a chaos-slowed
		// write lands, the stale write is dropped instead of reverting
		// the newer data.
		c.remote.PutLatest(Key(pos), c.local[pos], func(err error) {
			if err != nil {
				c.dirty[pos] = true
			}
		})
	}
}
